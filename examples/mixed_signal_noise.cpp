// Mixed-signal substrate noise study — the scenario that motivates the
// whole problem (§1.1): a switching digital block injects current into the
// substrate and disturbs a sensitive analog block on the same die. We
// extract a sparse coupling model once, then evaluate many switching
// patterns cheaply, and quantify how much a grounded guard ring between the
// blocks attenuates the coupling.
#include <cstdio>
#include <vector>

#include "subspar/subspar.hpp"

using namespace subspar;

namespace {

struct Chip {
  Layout layout;
  std::vector<std::size_t> digital;
  std::vector<std::size_t> analog;
  std::vector<std::size_t> guard;
};

// 64x64-panel die: digital block lower-left, analog quad upper-right,
// optionally a guard "ring" (split into per-cell segments so each fits in a
// finest-level quadtree square, as §5.2 prescribes for long contacts).
Chip build_chip(bool with_guard) {
  Chip chip{Layout(64, 64, 2.0), {}, {}, {}};
  for (int cy = 1; cy < 7; ++cy)
    for (int cx = 1; cx < 7; ++cx)
      chip.digital.push_back(chip.layout.add_contact(Contact(4 * cx + 1, 4 * cy + 1, 2, 2)));
  for (int cy = 12; cy < 14; ++cy)
    for (int cx = 12; cx < 14; ++cx)
      chip.analog.push_back(chip.layout.add_contact(Contact(4 * cx + 1, 4 * cy + 1, 2, 2)));
  if (with_guard) {
    // Guard ring fully enclosing the analog quad, emitted as per-cell strip
    // segments so each piece fits inside a finest-level quadtree square.
    for (int c = 11; c <= 14; ++c) {
      chip.guard.push_back(chip.layout.add_contact(Contact(4 * c, 4 * 11 + 1, 4, 1)));  // south
      chip.guard.push_back(chip.layout.add_contact(Contact(4 * c, 4 * 14 + 1, 4, 1)));  // north
    }
    for (int c = 12; c <= 13; ++c) {
      chip.guard.push_back(chip.layout.add_contact(Contact(4 * 11 + 1, 4 * c, 1, 4)));  // west
      chip.guard.push_back(chip.layout.add_contact(Contact(4 * 14 + 1, 4 * c, 1, 4)));  // east
    }
  }
  return chip;
}

// RMS over the analog contacts of the currents induced by the digital
// switching pattern, with analog and guard contacts held at 0 V (grounded).
double analog_noise_rms(const SparsifiedModel& model, const Chip& chip,
                        const Vector& digital_pattern) {
  Vector v(chip.layout.n_contacts());
  for (std::size_t k = 0; k < chip.digital.size(); ++k) v[chip.digital[k]] = digital_pattern[k];
  const Vector i = model.apply(v);
  double s = 0.0;
  for (const std::size_t a : chip.analog) s += i[a] * i[a];
  return std::sqrt(s / static_cast<double>(chip.analog.size()));
}

}  // namespace

int main() {
  // Two substrates: the paper's nearly-floating profile (resistive layer
  // above the backplane) and a solidly grounded one. Guard rings intercept
  // surface currents, so their effectiveness depends on how much of the
  // coupling detours through the conductive bulk.
  const struct {
    const char* name;
    SubstrateStack stack;
  } substrates[] = {
      {"nearly-floating backplane (paper profile)", paper_stack(40.0)},
      {"grounded low-resistance backplane",
       SubstrateStack({{0.5, 1.0}, {39.5, 100.0}}, Backplane::kGrounded)},
  };

  bool guard_always_helps = true;
  for (const auto& sub : substrates) {
    std::printf("=== %s ===\n", sub.name);
    double rms_without = 0.0, rms_with = 0.0;
    for (const bool with_guard : {false, true}) {
      const Chip chip = build_chip(with_guard);
      const auto solver = make_solver(SolverKind::kSurface, chip.layout, sub.stack);
      const ExtractionResult extracted = Extractor(*solver, chip.layout).extract();
      const SparsifiedModel& model = extracted.model;
      std::printf("%-13s n=%zu  %s\n", with_guard ? "with guard:" : "no guard:",
                  chip.layout.n_contacts(), extracted.report.summary().c_str());

      // One-time extraction, then many cheap switching-pattern evaluations.
      Rng pat(99);
      double rms = 0.0;
      const int patterns = 64;
      for (int t = 0; t < patterns; ++t) {
        Vector dp(chip.digital.size());
        for (auto& x : dp) x = pat.below(2) ? 0.9 : -0.9;  // full-swing switching
        rms += analog_noise_rms(model, chip, dp);
      }
      rms /= patterns;
      std::printf("              mean analog noise current (RMS over %d patterns): %.3e\n",
                  patterns, rms);
      (with_guard ? rms_with : rms_without) = rms;

      // Spot-check the sparse model against one exact black-box solve.
      Vector dp(chip.digital.size(), 0.9);
      Vector v(chip.layout.n_contacts());
      for (std::size_t k = 0; k < chip.digital.size(); ++k) v[chip.digital[k]] = dp[k];
      const Vector exact = solver->solve(v);
      const Vector fast = model.apply(v);
      double emax = 0.0;
      for (const std::size_t a : chip.analog)
        emax = std::max(emax, std::abs(fast[a] - exact[a]) / std::abs(exact[a]));
      std::printf("              worst analog-current error vs exact solve: %.2f%%\n",
                  100.0 * emax);
    }
    std::printf("guard-ring attenuation: %.1fx (noise %.3e -> %.3e)\n\n",
                rms_without / rms_with, rms_without, rms_with);
    guard_always_helps = guard_always_helps && rms_with < rms_without;
  }
  std::printf(
      "takeaway: surface guard rings buy little here (~1.3x) because the\n"
      "coupling detours through the highly conductive bulk beneath them; a\n"
      "low-impedance grounded backplane attenuates the same noise ~100x.\n");
  return guard_always_helps ? 0 : 1;
}
