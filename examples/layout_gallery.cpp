// Gallery of the paper's contact layouts (Figs. 3-6..3-8, 4-1, 4-8, 4-10)
// rendered as ASCII occupancy maps plus quadtree statistics — a quick way
// to see what each benchmark example actually looks like.
#include <cstdio>
#include <string>

#include "subspar/geometry.hpp"

using namespace subspar;

namespace {

void show(const std::string& title, const Layout& layout) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%s", layout.ascii().c_str());
  const QuadTree tree(layout);
  std::size_t multipart = 0;
  double amin = 1e300, amax = 0.0;
  for (std::size_t i = 0; i < layout.n_contacts(); ++i) {
    multipart += layout.contact(i).parts.size() > 1;
    amin = std::min(amin, layout.contact_area(i));
    amax = std::max(amax, layout.contact_area(i));
  }
  std::printf(
      "contacts: %zu (multi-part: %zu), areas [%g, %g], quadtree levels: %d, "
      "finest squares: %zu\n\n",
      layout.n_contacts(), multipart, amin, amax, tree.max_level(),
      tree.squares(tree.max_level()).size());
}

}  // namespace

int main() {
  show("Fig. 3-6: regular grid (Examples 1a/1b)", regular_grid_layout(8));
  show("Fig. 3-7: irregular same-size placement (Example 2)", irregular_layout(8, 0.55, 42));
  show("Fig. 3-8: alternating sizes (Ch.3 Ex.3 / Ch.4 Ex.2)", alternating_size_layout(8));
  show("Fig. 4-1: six-contact vignette", simple_six_layout());
  show("Fig. 4-8: mixed shapes - squares, strips, rings (Ch.4 Ex.3)",
       mixed_shapes_layout(8, 7));
  show("Fig. 4-10: large mixed fields (Example 5, scaled)", large_mixed_layout(8, 0.8, 11));
  return 0;
}
