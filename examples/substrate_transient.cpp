// Transient substrate-noise simulation — the "include the substrate model
// in a circuit simulator" goal of §5.2 / ref. [11], end to end.
//
// A digital driver toggles a square wave onto an injector contact through
// its own series resistance; a sensitive analog sense node (contact + RC
// load) picks up the disturbance through the substrate. The sparse
// Q G_w Q' model sits inside the MNA operator: every Krylov iteration
// applies the substrate in O(n log n) instead of O(n^2). The waveform at
// the sense node is validated against the same simulation run with the
// dense G and printed as an ASCII oscillogram.
#include <cmath>
#include <cstdio>

#include "subspar/subspar.hpp"

using namespace subspar;

namespace {

struct Rig {
  Netlist netlist;
  NodeId driver = kGround, inj = kGround, sense = kGround;
  std::vector<NodeId> contact_nodes;
};

// Circuit: vsrc -> 50 ohm -> injector contact; sense contact -> RC to
// ground; all other substrate contacts grounded.
Rig build_rig(std::size_t n_contacts, std::size_t injector, std::size_t sensor) {
  Rig rig;
  rig.driver = rig.netlist.add_node("driver");
  rig.inj = rig.netlist.add_node("injector");
  rig.sense = rig.netlist.add_node("sense");
  rig.netlist.add_voltage_source(rig.driver, kGround, 0.0);
  rig.netlist.add_resistor(rig.driver, rig.inj, 50.0);
  rig.netlist.add_resistor(rig.sense, kGround, 25.0);
  rig.netlist.add_capacitor(rig.sense, kGround, 4.0);
  rig.contact_nodes.assign(n_contacts, kGround);
  rig.contact_nodes[injector] = rig.inj;
  rig.contact_nodes[sensor] = rig.sense;
  return rig;
}

void oscillogram(const std::vector<double>& t, const std::vector<double>& v) {
  double vmax = 1e-30;
  for (const double x : v) vmax = std::max(vmax, std::abs(x));
  std::printf("sense-node waveform (full scale +-%.2e V):\n", vmax);
  for (std::size_t k = 0; k < t.size(); k += 2) {
    const int col = static_cast<int>(30.0 * v[k] / vmax);
    char line[64];
    for (int i = 0; i < 61; ++i) line[i] = (i == 30) ? '|' : ' ';
    line[30 + std::max(-30, std::min(30, col))] = '*';
    line[61] = 0;
    std::printf("t=%6.3f  %s\n", t[k], line);
  }
}

}  // namespace

int main() {
  const Layout layout = regular_grid_layout(8);  // 64 contacts
  const SubstrateStack stack = paper_stack();
  const auto solver = make_solver(SolverKind::kSurface, layout, stack);
  const SparsifiedModel model = Extractor(*solver, layout).extract().model;
  const Matrix g = extract_dense(*solver);
  std::printf("substrate model: %s\n\n", model.summary().c_str());

  const std::size_t injector = 9, sensor = 54;  // opposite corners
  const auto stimulus = [](double t, Netlist& nl) {
    nl.set_voltage_source(0, std::fmod(t, 2.0) < 1.0 ? 1.0 : -1.0);  // square wave
  };

  Rig sparse_rig = build_rig(layout.n_contacts(), injector, sensor);
  CircuitSim sparse_sim(
      sparse_rig.netlist,
      {sparse_rig.contact_nodes, [&](const Vector& vc) { return model.apply(vc); }});
  const auto sparse_tr = sparse_sim.transient(0.05, 80, {sparse_rig.sense}, stimulus);

  Rig dense_rig = build_rig(layout.n_contacts(), injector, sensor);
  CircuitSim dense_sim(dense_rig.netlist,
                       {dense_rig.contact_nodes, [&](const Vector& vc) { return matvec(g, vc); }});
  const auto dense_tr = dense_sim.transient(0.05, 80, {dense_rig.sense}, stimulus);

  std::vector<double> vs, vd;
  double err = 0.0, scale = 0.0;
  for (std::size_t k = 0; k < sparse_tr.time.size(); ++k) {
    vs.push_back(sparse_tr.probe_voltages[k][0]);
    vd.push_back(dense_tr.probe_voltages[k][0]);
    err = std::max(err, std::abs(vs.back() - vd.back()));
    scale = std::max(scale, std::abs(vd.back()));
  }
  oscillogram(sparse_tr.time, vs);
  std::printf("\nsparse-vs-dense waveform deviation: %.2f%% of full scale\n",
              100.0 * err / scale);
  std::printf("substrate applies per transient: sparse O(nnz) inside each GMRES\n"
              "iteration vs dense O(n^2) — identical waveforms, cheaper operator.\n");
  return err < 0.05 * scale ? 0 : 1;
}
