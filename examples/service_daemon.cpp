// Service daemon: drive the ExtractionService the way a long-running
// extraction server would — entirely through the public API.
//
// Spins up the job engine with a bounded queue, a retry policy, and a cache
// memory budget; then plays a realistic traffic mix against it from several
// client threads: duplicate requests (deduplicated in flight), repeats
// (cache hits), a deliberately cancelled job, one with a hopeless deadline,
// and a burst that overflows the queue (shed with kOverloaded). Prints the
// per-job outcomes and the service counters, and exits nonzero if any
// invariant breaks — CI runs this as a smoke test, including under fault
// injection.
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "subspar/subspar.hpp"

using namespace subspar;

int main() {
  const SubstrateStack stack = paper_stack(/*depth=*/40.0);
  const Layout layout = regular_grid_layout(/*contacts_per_side=*/8);

  // The engine: 2 workers, small queue, 3 attempts per job with fast
  // backoff, and a cache budget of roughly a handful of models.
  ExtractionService service({.workers = 2,
                             .queue_capacity = 16,
                             .cache_memory_budget = 1u << 20,
                             .retry = {.max_attempts = 3, .base_backoff_ms = 5.0}});

  // Traffic: 3 client threads x 3 distinct requests (seeds), twice each.
  // Dedup + the cache make that cost exactly 3 extractions.
  constexpr int kClients = 3, kKeys = 3;
  std::vector<std::shared_ptr<SubstrateSolver>> solvers;
  for (int k = 0; k < kKeys; ++k)
    solvers.push_back(
        std::shared_ptr<SubstrateSolver>(make_solver(SolverKind::kSurface, layout, stack)));
  const auto request_for = [](int key) {
    ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                              .threshold_sparsity_multiple = 6.0};
    request.lowrank.seed = static_cast<std::uint64_t>(key);
    return request;
  };

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int round = 0; round < 2; ++round)
        for (int k = 0; k < kKeys; ++k) {
          const int key = (k + c) % kKeys;
          ExtractionJob job = service.submit(solvers[key], layout, stack, request_for(key));
          const Status status = job.wait();
          if (!status.ok()) {
            std::printf("client %d key %d: UNEXPECTED %s\n", c, key,
                        status.message().c_str());
            failures.fetch_add(1);
          }
        }
    });
  for (std::thread& t : clients) t.join();

  long solves = 0;
  for (const auto& solver : solvers) solves += solver->solve_count();
  const ServiceStats after_traffic = service.stats();
  std::printf("traffic: %zu accepted, %zu deduped, %zu cache hits, %ld solves total\n",
              after_traffic.accepted, after_traffic.deduped, after_traffic.cache_hits,
              solves);

  // A job the client abandons: cancellation is cooperative and typed. The
  // caller-held token is cancelled before a worker can start the attempt,
  // so the outcome is deterministic.
  {
    const auto token = std::make_shared<CancelToken>();
    token->cancel();
    ExtractionJob job = service.submit(solvers[0], layout, stack, request_for(100),
                                       {.cancel = token});
    const Status status = job.wait();
    std::printf("cancelled job: %s (status %s)\n", error_code_name(status.code()),
                job_status_name(job.status()));
  }

  // A job that cannot make its deadline (for a cached key it would; seed 101
  // is fresh, and 0.01 ms is hopeless).
  {
    ExtractionJob job = service.submit(solvers[0], layout, stack, request_for(101),
                                       {.deadline_ms = 0.01});
    const Status status = job.wait();
    std::printf("deadline job: %s (status %s)\n", error_code_name(status.code()),
                job_status_name(job.status()));
  }

  const ServiceStats stats = service.stats();
  std::printf("service: accepted %zu, deduped %zu, shed %zu, retried %zu, cancelled %zu, "
              "deadline-expired %zu, succeeded %zu, failed %zu\n",
              stats.accepted, stats.deduped, stats.shed, stats.retried, stats.cancelled,
              stats.deadline_expired, stats.succeeded, stats.failed);
  std::printf("cache: %zu models resident, %zu bytes (budget %zu), %zu evictions\n",
              service.cache().size(), service.cache().memory_bytes(),
              service.cache().memory_budget(), service.cache().stats().evictions);

  // Invariant gates for CI (under fault injection retried attempts may add
  // solves, so gate on outcomes, not on the solve count).
  if (failures.load() != 0) {
    std::printf("FAIL: %d jobs failed\n", failures.load());
    return 1;
  }
  if (stats.cancelled < 1 || stats.deadline_expired < 1) {
    std::printf("FAIL: cancellation/deadline outcomes missing\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
