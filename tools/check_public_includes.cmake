# Public-API include guard: examples/ and bench/ must compile against the
# public surface only — every quoted include must be a subspar/* header (or
# the bench-local common.hpp, which itself passes the same check). A direct
# src/-internal include ("core/extractor.hpp", "substrate/fd_solver.hpp", ...)
# fails the build's `public_include_guard` ctest and the CI step.
#
# Usage: cmake -DSOURCE_DIR=<repo root> -P tools/check_public_includes.cmake
if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB guarded_files
  "${SOURCE_DIR}/examples/*.cpp" "${SOURCE_DIR}/examples/*.hpp"
  "${SOURCE_DIR}/bench/*.cpp" "${SOURCE_DIR}/bench/*.hpp")
if(NOT guarded_files)
  message(FATAL_ERROR "no files found under ${SOURCE_DIR}/examples and ${SOURCE_DIR}/bench")
endif()

set(violations "")
foreach(file IN LISTS guarded_files)
  file(STRINGS "${file}" include_lines REGEX "^[ \t]*#[ \t]*include[ \t]*\"")
  foreach(line IN LISTS include_lines)
    string(REGEX MATCH "\"([^\"]+)\"" _ "${line}")
    set(header "${CMAKE_MATCH_1}")
    if(NOT header MATCHES "^subspar/" AND NOT header STREQUAL "common.hpp")
      list(APPEND violations "${file}: ${header}")
    endif()
  endforeach()
endforeach()

if(violations)
  list(JOIN violations "\n  " pretty)
  message(FATAL_ERROR
    "examples/ and bench/ must include only subspar/* public headers "
    "(include/subspar/); found internal includes:\n  ${pretty}")
endif()
list(LENGTH guarded_files guarded_count)
message(STATUS "public include guard: OK (${guarded_count} files clean)")
