#!/usr/bin/env python3
"""Run a subspar google-benchmark binary once per kernel backend and merge
the per-run JSON dumps into one baseline file.

The committed baselines under bench/baselines/ record one entry per backend
(the fp64-scalar reference, plus the best SIMD backend the host dispatches
to), each a verbatim google-benchmark dump — context block included, so the
`subspar_backend` / `subspar_threads` provenance the bench main() adds is
preserved per entry. The mixed-precision rows (BM_MatmulMixed, BM_SpMMMixed)
run inside every entry, so fp64-scalar vs fp64-SIMD vs mixed comparisons all
come from the same file.

Typical regeneration (matches README "Performance"):

  python3 tools/bench_backends.py --bench ./build/bench/bench_micro_kernels \
      --threads 1 --min-time 0.1 --out bench/baselines/BENCH_micro_kernels.json
  python3 tools/bench_backends.py --bench ./build/bench/bench_micro_kernels \
      --threads 4 --min-time 0.1 --filter 'BM_SpMM|BM_Ic0|BM_FdSolve' \
      --out bench/baselines/BENCH_sparse_engine.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_backend(bench, backend, threads, min_time, bench_filter):
    """One bench run; `backend` None means the process default (best SIMD)."""
    env = dict(os.environ)
    env.pop("SUBSPAR_BACKEND", None)
    if backend is not None:
        env["SUBSPAR_BACKEND"] = backend
    if threads is not None:
        env["SUBSPAR_THREADS"] = str(threads)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        cmd = [
            bench,
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
            f"--benchmark_min_time={min_time}",
        ]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        label = backend or "default"
        print(f"[bench_backends] running backend={label} ...", flush=True)
        subprocess.run(cmd, env=env, check=True, stdout=sys.stderr)
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="benchmark binary to run")
    parser.add_argument("--out", required=True, help="merged baseline JSON to write")
    parser.add_argument(
        "--backends",
        default="scalar,default",
        help="comma-separated SUBSPAR_BACKEND values; 'default' = unset "
        "(the best backend the host dispatches to). Default: scalar,default",
    )
    parser.add_argument("--threads", type=int, default=None, help="SUBSPAR_THREADS for every run")
    parser.add_argument("--min-time", default="0.1", help="--benchmark_min_time per run")
    parser.add_argument("--filter", default=None, help="--benchmark_filter per run")
    args = parser.parse_args()

    entries = []
    seen = set()
    for backend in args.backends.split(","):
        backend = backend.strip()
        dump = run_backend(args.bench, None if backend == "default" else backend,
                           args.threads, args.min_time, args.filter)
        # Label from the run's own context: 'default' resolves to whatever
        # the dispatcher picked, and a host without SIMD TUs (where default
        # == scalar) collapses to a single entry instead of duplicating it.
        name = dump.get("context", {}).get("subspar_backend", backend)
        if name in seen:
            print(f"[bench_backends] backend '{name}' already recorded; skipping", flush=True)
            continue
        seen.add(name)
        entries.append({"backend": name, "context": dump["context"],
                        "benchmarks": dump["benchmarks"]})

    with open(args.out, "w") as f:
        json.dump({"schema": "subspar-bench-backends-v1", "entries": entries}, f, indent=1)
        f.write("\n")
    print(f"[bench_backends] wrote {args.out}: "
          + ", ".join(e["backend"] for e in entries), flush=True)


if __name__ == "__main__":
    main()
