#!/usr/bin/env python3
"""Run clang-tidy over the library sources using a compile database.

Thin parallel driver so CI (and anyone with clang-tidy installed) gets the
exact same gate: every translation unit under src/ is checked against the
repo-root .clang-tidy with WarningsAsErrors — any finding fails the run.

Usage:
  tools/run_clang_tidy.py --build <build dir with compile_commands.json>
                          [--clang-tidy clang-tidy-15] [-j N]

Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the CMakeLists does this
by default) so <build>/compile_commands.json exists.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path


def tu_list(build_dir: Path, repo: Path) -> list[Path]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise SystemExit(
            f"{db_path} not found: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON")
    db = json.loads(db_path.read_text())
    files = set()
    for entry in db:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry["directory"]) / f
        f = f.resolve()
        try:
            rel = f.relative_to(repo)
        except ValueError:
            continue
        if rel.parts[0] == "src" and f.suffix == ".cpp":
            files.add(f)
    if not files:
        raise SystemExit("no src/*.cpp entries in the compile database")
    return sorted(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build", type=Path, required=True,
                        help="build dir containing compile_commands.json")
    parser.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"),
                        help="clang-tidy executable (or $CLANG_TIDY)")
    parser.add_argument("-j", type=int, default=os.cpu_count() or 2,
                        help="parallel clang-tidy processes")
    args = parser.parse_args()

    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        raise SystemExit(f"'{args.clang_tidy}' not found on PATH "
                         "(install clang-tidy or pass --clang-tidy)")

    repo = Path(__file__).resolve().parent.parent
    files = tu_list(args.build.resolve(), repo)
    print(f"clang-tidy ({tidy}) over {len(files)} translation units, -j{args.j}")

    def run_one(path: Path) -> tuple[Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build), "--quiet", str(path)],
            capture_output=True, text=True)
        # --quiet still prints a per-file suppression tally on stderr; only
        # surface stderr when the TU actually failed.
        out = proc.stdout + (proc.stderr if proc.returncode else "")
        return path, proc.returncode, out

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.j) as pool:
        for path, rc, out in pool.map(run_one, files):
            rel = path.relative_to(repo)
            if rc:
                failed += 1
                print(f"FAIL {rel}\n{out}")
            else:
                print(f"ok   {rel}")
    if failed:
        print(f"run_clang_tidy: {failed}/{len(files)} translation units FAILED")
        return 1
    print(f"run_clang_tidy: {len(files)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
