#!/usr/bin/env python3
"""subspar_lint: fast file-level invariants the compiler cannot see.

The clang -Wthread-safety build proves lock discipline; this linter proves
the project-level rules that no compiler flag covers. It runs in a few
milliseconds over the whole tree and is wired as the `subspar_lint` tier-1
ctest (plus a `subspar_lint_fixtures` selftest that asserts every rule still
fires on the known-bad snippets under tests/lint_fixtures/).

Rules (scope: src/** and include/** unless noted):

  naked-sync       std:: mutex/lock/condition_variable types may appear only
                   in src/util/sync.hpp, whose annotated wrappers are the
                   project's sole synchronization primitives. A naked
                   primitive is invisible to the thread-safety analysis.
  nondeterminism   No ambient-entropy or wall-clock seeding in library code:
                   rand()/srand, std::random_device, std::mt19937 (use
                   util/rng.hpp's seeded Rng), time(nullptr)-style seeds.
                   Extraction results are bit-reproducible by contract; every
                   random stream must be derived from a request-carried seed.
  unordered-hash   Files that touch the FNV-1a content hash (Fnv1a /
                   util/hash.hpp) must not use std::unordered_* containers:
                   their iteration order is implementation-defined, and an
                   unordered walk feeding the hash would silently break the
                   cache key's cross-process stability.
  fast-math        No -ffast-math style pragmas or FP-contraction overrides
                   anywhere in library code: the kernels pin bit-exact
                   results across thread counts (FMA contraction alone broke
                   this once — see linalg/sparse.cpp history).
  raw-simd         SIMD intrinsics headers, GCC vector extensions
                   (vector_size), and vector builtins may appear only in the
                   kernel-backend family (src/linalg/backend*) and transform
                   backend TUs. Everything else reaches vectorized code
                   through linalg/backend.hpp's KernelOps dispatch, so one
                   CPUID gate governs every ISA-specific instruction.
  layering         Lower-layer modules (util, linalg, transform, geometry,
                   substrate, wavelet, lowrank, circuit) must not include
                   api/ internals or the api-layer public headers
                   (subspar/service.hpp, subspar/cache.hpp, subspar/subspar.hpp);
                   of subspar/* they may include only subspar/status.hpp (the
                   leaf error vocabulary). core/ implements the pipeline and
                   may additionally use subspar/* EXCEPT service/cache/umbrella.
  public-header    include/subspar/ must stay self-contained: it re-exports
                   lower-layer module headers and other subspar/* headers,
                   never src/api/ internals.

Suppression policy: append `subspar-lint: allow(<rule>)` in a comment on the
offending line, with a written reason next to it. Suppressions are expected
to be rare and reviewed like NOLINT (see docs/ARCHITECTURE.md).

Usage:
  tools/subspar_lint.py --root <repo root>          # lint the tree
  tools/subspar_lint.py --selftest <fixtures dir>   # prove rules fire
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SYNC_HEADER = Path("src/util/sync.hpp")

NAKED_SYNC = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_timed_)?mutex\b"
    r"|std::shared_mutex\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)

NONDETERMINISM = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand(): unseeded C PRNG"),
    (re.compile(r"std::random_device\b"), "std::random_device: ambient entropy"),
    (re.compile(r"std::mt19937(?:_64)?\b"),
     "std::mt19937: use util/rng.hpp's seeded Rng"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr): wall-clock seeding"),
]

UNORDERED = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")
FNV_MARKER = re.compile(r"\bFnv1a\b")

FAST_MATH = [
    (re.compile(r"ffast-math|fast_math|fast-math"), "-ffast-math"),
    (re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON"), "FP_CONTRACT ON"),
    (re.compile(r"#\s*pragma\s+(?:clang\s+fp|float_control|fp_contract)"),
     "floating-point contraction/model pragma"),
    (re.compile(r"#\s*pragma\s+GCC\s+optimize"), "#pragma GCC optimize"),
]

RAW_SIMD = [
    (re.compile(r"#\s*include\s*<(?:immintrin|x86intrin|xmmintrin|emmintrin|"
                r"smmintrin|tmmintrin|nmmintrin|wmmintrin|avxintrin|"
                r"arm_neon|arm_sve)\.h>"),
     "SIMD intrinsics header"),
    (re.compile(r"\bvector_size\b"), "GCC vector_size extension"),
    (re.compile(r"\b_mm(?:256|512)?_\w+"), "x86 SIMD intrinsic"),
    (re.compile(r"\bfloat(?:32|64)x\d+_t\b|\bv(?:ld|st)1q?_f(?:32|64)\b"),
     "NEON intrinsic"),
    (re.compile(r"__builtin_(?:shufflevector|convertvector|assoc_barrier)\b"),
     "vector builtin"),
]

LOWER_LAYERS = ("util", "linalg", "transform", "geometry", "substrate",
                "wavelet", "lowrank", "circuit")
API_LAYER_PUBLIC = ("subspar/service.hpp", "subspar/cache.hpp",
                    "subspar/subspar.hpp")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)
ALLOW_RE = re.compile(r"subspar-lint:\s*allow\(([a-z-]+)\)")

BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT = re.compile(r"//[^\n]*")
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _blank(match: re.Match) -> str:
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line numbers (and string literals —
    #include targets are lexically strings and must survive this pass)."""
    return LINE_COMMENT.sub(_blank, BLOCK_COMMENT.sub(_blank, text))


def strip_noncode(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""
    return STRING_LIT.sub(_blank, strip_comments(text))


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def allowed_lines(raw: str, rule: str) -> set[int]:
    """Line numbers carrying a `subspar-lint: allow(<rule>)` suppression."""
    out = set()
    for i, line in enumerate(raw.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            out.add(i)
    return out


def scan_file(root: Path, path: Path) -> list[Violation]:
    rel = path.relative_to(root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    headers = strip_comments(raw)  # keeps the "..." include targets
    code = strip_noncode(raw)
    violations: list[Violation] = []

    def report(rule: str, pos: int, message: str) -> None:
        line = line_of(code, pos)
        if line not in allowed_lines(raw, rule):
            violations.append(Violation(rel, line, rule, message))

    # --- naked-sync -------------------------------------------------------
    if rel != SYNC_HEADER:
        for m in NAKED_SYNC.finditer(code):
            report("naked-sync", m.start(),
                   f"naked '{m.group(0)}' — use the annotated wrappers in "
                   "util/sync.hpp (Mutex/SharedMutex/MutexLock/...)")

    # --- nondeterminism ---------------------------------------------------
    for pattern, what in NONDETERMINISM:
        for m in pattern.finditer(code):
            report("nondeterminism", m.start(),
                   f"{what}; all randomness must flow from a request-carried "
                   "seed (util/rng.hpp)")

    # --- unordered-hash ---------------------------------------------------
    includes = INCLUDE_RE.findall(headers)
    touches_hash = bool(FNV_MARKER.search(code)) or "util/hash.hpp" in includes
    if touches_hash:
        for m in UNORDERED.finditer(code):
            report("unordered-hash", m.start(),
                   f"'{m.group(0)}' in a file using the FNV-1a content hash: "
                   "unordered iteration order is implementation-defined and "
                   "must never feed a cache key")

    # --- fast-math --------------------------------------------------------
    for pattern, what in FAST_MATH:
        for m in pattern.finditer(code):
            report("fast-math", m.start(),
                   f"{what} in bit-exact library code: kernels must stay "
                   "bit-identical across thread counts and builds")

    # --- raw-simd ---------------------------------------------------------
    parts = rel.parts
    backend_tu = (len(parts) >= 3 and parts[0] == "src" and
                  ((parts[1] == "linalg" and parts[2].startswith("backend")) or
                   (parts[1] == "transform" and "backend" in parts[2])))
    if not backend_tu:
        for pattern, what in RAW_SIMD:
            for m in pattern.finditer(code):
                report("raw-simd", m.start(),
                       f"{what} outside the kernel backend: vectorized code "
                       "goes through linalg/backend.hpp's KernelOps dispatch "
                       "(src/linalg/backend*)")

    # --- layering / public-header ----------------------------------------
    for m in INCLUDE_RE.finditer(headers):
        header = m.group(1)
        if parts[0] == "src" and len(parts) > 1 and parts[1] != "api":
            layer = parts[1]
            if header.startswith("api/"):
                report("layering", m.start(),
                       f"src/{layer}/ must not include api/ internals "
                       f"('{header}'): api sits above every other module")
            elif layer in LOWER_LAYERS and header.startswith("subspar/") \
                    and header != "subspar/status.hpp":
                report("layering", m.start(),
                       f"src/{layer}/ must not include '{header}': lower "
                       "layers may use only subspar/status.hpp of the public "
                       "surface")
            elif layer == "core" and header in API_LAYER_PUBLIC:
                report("layering", m.start(),
                       f"src/core/ must not include '{header}': the pipeline "
                       "sits below the api layer (registry/cache/service)")
        if parts[0] == "include":
            if header.startswith("api/"):
                report("public-header", m.start(),
                       f"include/subspar/ must stay self-contained; "
                       f"'{header}' reaches into src/api/ internals")

    return violations


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    files = []
    for sub in ("src", "include"):
        base = root / sub
        if base.is_dir():
            files += (sorted(base.rglob("*.hpp")) + sorted(base.rglob("*.cpp"))
                      + sorted(base.rglob("*.inl")))
    if not files:
        raise SystemExit(f"subspar_lint: no sources under {root}/src,include")
    for path in files:
        violations += scan_file(root, path)
    return violations


def selftest(fixtures: Path) -> int:
    """Every fixture dir named `<rule>__<case>` must trip exactly that rule;
    a `clean__*` fixture must produce zero violations."""
    failures = 0
    cases = sorted(p for p in fixtures.iterdir() if p.is_dir())
    if not cases:
        print(f"subspar_lint --selftest: no fixtures under {fixtures}")
        return 1
    for case in cases:
        expected = case.name.split("__", 1)[0]
        got = lint_tree(case)
        rules = {v.rule for v in got}
        if expected == "clean":
            if got:
                failures += 1
                print(f"FAIL {case.name}: expected no violations, got:")
                for v in got:
                    print(f"  {v}")
            else:
                print(f"ok   {case.name}: clean as expected")
        elif expected not in rules:
            failures += 1
            print(f"FAIL {case.name}: expected rule '{expected}' to fire; "
                  f"got {sorted(rules) or 'nothing'}")
        else:
            print(f"ok   {case.name}: '{expected}' fired "
                  f"({sum(v.rule == expected for v in got)} finding(s))")
    if failures:
        print(f"subspar_lint --selftest: {failures}/{len(cases)} fixtures FAILED")
        return 1
    print(f"subspar_lint --selftest: {len(cases)} fixtures OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, help="repository root to lint")
    parser.add_argument("--selftest", type=Path, metavar="FIXTURES",
                        help="run the rule selftest over a fixtures directory")
    args = parser.parse_args()
    if args.selftest:
        return selftest(args.selftest)
    if not args.root:
        parser.error("pass --root <repo root> or --selftest <fixtures dir>")
    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"subspar_lint: {len(violations)} violation(s)")
        return 1
    print("subspar_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
